/**
 * @file
 * §6.3 — DMT overheads, as google-benchmark microbenchmarks plus a
 * summary report:
 *
 *  - KVM_HC_ALLOC_TEA latency for 50/100/200 MB TEAs, single-level
 *    and nested (simulated cost from the calibrated model, plus the
 *    real host-side management work measured by the benchmark);
 *  - VMA-to-TEA mapping management under heavy fragmentation
 *    (FMFI ~0.99), the Redis VMA lifecycle;
 *  - page-table memory consumption, DMT (eager TEAs) vs vanilla;
 *  - DMT register coverage of translation requests;
 *  - the CACTI-anchored hardware cost model.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "core/hw_cost.hh"
#include "os/fragmenter.hh"
#include "virt/costs.hh"

using namespace dmt;
using namespace dmt::bench;

namespace
{

/** Hypercall microbenchmark: allocate a TEA of `mb` megabytes of
 *  table frames through the pv path and report the simulated cost. */
void
BM_HypercallAllocTea(benchmark::State &state)
{
    const std::uint64_t teaBytes = state.range(0) * 1024 * 1024;
    const std::uint64_t pages = teaBytes >> pageShift;
    for (auto _ : state) {
        state.PauseTiming();
        PhysicalMemory hostMem(Addr{4} << 30);
        BuddyAllocator hostAlloc(hostMem.size() >> pageShift);
        VmConfig vmCfg;
        vmCfg.vmBytes = Addr{2} << 30;
        VirtualMachine vm(hostMem, hostAlloc, vmCfg);
        GteaTable table;
        TeaHypercall hypercall(vm, hostAlloc, table);
        state.ResumeTiming();

        auto grant = hypercall.allocTea(pages);
        benchmark::DoNotOptimize(grant);

        state.PauseTiming();
        const double simulatedMs =
            static_cast<double>(hypercall.lastCost()) /
            cyclesPerSecond * 1e3;
        state.counters["sim_ms"] = simulatedMs;
        state.ResumeTiming();
    }
}

BENCHMARK(BM_HypercallAllocTea)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

/** Mapping management under FMFI ~0.99 fragmentation: the full
 *  Redis-like VMA lifecycle with DMT attached. */
void
BM_MappingManagementFragmented(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        PhysicalMemory mem(Addr{2} << 30);
        BuddyAllocator alloc(mem.size() >> pageShift);
        AddressSpace proc(mem, alloc, {});
        // Burn contiguity: only isolated order-0 holes stay free.
        Fragmenter fragmenter(alloc);
        fragmenter.fragment(0.4);
        state.ResumeTiming();

        LocalTeaSource src(alloc);
        TeaManager teas(proc.pageTable(), src);
        DmtRegisterFile regs;
        MappingManager manager(proc, teas, regs, {});
        // 64 MB heap + a handful of arenas, Redis-style but sized
        // for the fragmented 2 GB testbed.
        proc.mmapAt(0x10000000, Addr{64} << 20, VmaKind::Heap);
        Addr at = 0x20000000;
        for (int i = 0; i < 5; ++i) {
            proc.mmapAt(at, Addr{4} << 20, VmaKind::Data);
            at += (Addr{4} << 20) + pageSize;
        }
        benchmark::DoNotOptimize(manager.stats().splits);

        state.PauseTiming();
        state.counters["splits"] =
            static_cast<double>(manager.stats().splits);
        state.counters["uncovered"] =
            static_cast<double>(manager.stats().uncovered);
        proc.munmap(0x10000000);
        state.ResumeTiming();
    }
}

BENCHMARK(BM_MappingManagementFragmented)
    ->Unit(benchmark::kMillisecond);

/** Report block printed after the microbenchmarks. */
void
printSummary()
{
    printConfigBanner("Section 6.3: DMT overhead report");

    // Simulated hypercall latencies (the paper's Table-form list).
    std::printf("\nKVM_HC_ALLOC_TEA simulated latency (model: fixed "
                "hypercall cost + per-page allocation):\n");
    Table hc({"TEA size", "Virtualized (ms)", "Nested (ms)"});
    for (int mb : {50, 100, 200}) {
        const std::uint64_t pages =
            (static_cast<std::uint64_t>(mb) << 20) >> pageShift;
        const double virtMs =
            (hypercallVirtSeconds +
             static_cast<double>(pages *
                                 TeaHypercall::allocCyclesPerPage) /
                 cyclesPerSecond) *
            1e3;
        const double nestedMs =
            (hypercallNestedSeconds +
             static_cast<double>(pages *
                                 TeaHypercall::allocCyclesPerPage) /
                 cyclesPerSecond) *
            1e3;
        hc.addRow({std::to_string(mb) + " MB", Table::num(virtMs),
                   Table::num(nestedMs)});
    }
    hc.print();
    std::printf("Paper: 13.27/23.73/48.07 ms virtualized, "
                "15.67/24.55/54.87 ms nested; bare hypercall 1.88 us "
                "/ 10.75 us.\n");

    // Page-table memory, DMT vs vanilla, plus register coverage.
    std::printf("\nPage-table memory and register coverage (4KB "
                "pages):\n");
    Table mem({"Workload", "Vanilla PT (MB)", "DMT PT+TEA (MB)",
               "Overhead", "Coverage"});
    const double scale = scaleFromEnv();
    for (const auto &name : {"Redis", "Memcached", "GUPS"}) {
        auto wl = makeWorkload(name, scale);
        NativeTestbed vtb(wl->footprintBytes(), {});
        wl->setup(vtb.proc());
        const double vanillaMb =
            static_cast<double>(vtb.proc().pageTable().tableBytes()) /
            (1024.0 * 1024.0);

        auto wl2 = makeWorkload(name, scale);
        NativeTestbed dtb(wl2->footprintBytes(), {});
        dtb.attachDmt();
        wl2->setup(dtb.proc());
        // TEA-reserved frames include eager slack; table pages placed
        // inside TEAs are counted once.
        const std::uint64_t teaPages =
            dtb.teaManager()->reservedPages();
        const std::uint64_t scattered =
            dtb.proc().pageTable().tablePages();
        std::uint64_t inTea = 0;
        for (const Tea *tea : dtb.teaManager()->all())
            inTea += tea->pages();
        const double dmtMb =
            static_cast<double>((scattered - std::min(scattered,
                                                      inTea)) +
                                teaPages) *
            pageSize / (1024.0 * 1024.0);

        const Outcome out = runNative(*wl2, Design::Dmt, false);
        (void)out;
        mem.addRow(
            {name, Table::num(vanillaMb), Table::num(dmtMb),
             Table::num((dmtMb / vanillaMb - 1.0) * 100.0, 1) + "%",
             "-"});
    }
    mem.print();
    std::printf("Paper: 247.2 MB vs 241.3 MB on average (<2.5%% "
                "extra).\n");

    std::printf("\nDMT register coverage (virtualized, 4KB):\n");
    Table cov({"Workload", "Coverage", "Fallbacks/walks"});
    for (const auto &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, scale);
        const Outcome out = runVirt(*wl, Design::PvDmt, false);
        cov.addRow({name, Table::num(out.coverage * 100.0, 2) + "%",
                    Table::num(
                        out.sim.walks
                            ? 100.0 *
                                  static_cast<double>(
                                      out.sim.fallbacks) /
                                  static_cast<double>(out.sim.walks)
                            : 0.0,
                        3) +
                        "%"});
    }
    cov.print();
    std::printf("Paper: the registers cover 99+%% of walk requests.\n");

    // Hardware cost model.
    std::printf("\nHardware cost (CACTI-anchored model, 22nm):\n");
    Table hw({"Registers", "Leakage (mW)", "Area (mm^2)",
              "% of Xeon TDP", "% of die"});
    for (int regs : {4, 8, 16, 32}) {
        const HwCost cost = estimateDmtHardwareCost(regs);
        hw.addRow({std::to_string(regs),
                   Table::num(cost.leakageMilliWatts),
                   Table::num(cost.areaMm2, 3),
                   Table::num(cost.leakageMilliWatts / 10.0 /
                                  xeonTdpWatts,
                              4) +
                       "%",
                   Table::num(cost.areaMm2 / xeonDieMm2 * 100.0, 4) +
                       "%"});
    }
    hw.print();
    std::printf("Paper: 4.87 mW and 0.03 mm^2 per MMU at 16 "
                "registers.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printSummary();
    return 0;
}
