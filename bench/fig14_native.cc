/**
 * @file
 * Figure 14 — native environment: page-walk and application speedup
 * of FPT, ECPT, ASAP and DMT over vanilla Linux, with 4 KB pages and
 * with THP.
 *
 * Walk speedup is the ratio of simulated translation overhead per
 * access (O_sim); application speedup applies the §5 execution-time
 * model with the paper-calibrated measured baseline.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace dmt;
using namespace dmt::bench;

namespace
{

const std::vector<Design> designs = {Design::Fpt, Design::Ecpt,
                                     Design::Asap, Design::Dmt};

void
runMode(bool thp, JsonReport &json)
{
    std::printf("\n--- Figure 14%s: native, %s ---\n",
                thp ? "b" : "a", thp ? "THP" : "4KB pages");
    Table walkTable({"Workload", "FPT", "ECPT", "ASAP", "DMT"});
    Table appTable({"Workload", "FPT", "ECPT", "ASAP", "DMT"});

    std::map<Design, std::vector<double>> walkAll, appAll;
    const double scale = scaleFromEnv();
    for (const auto &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, scale);
        const Calibration &cal = wl->calibration();
        const Outcome vanilla =
            runNative(*wl, Design::Vanilla, thp);
        const double oVanilla = vanilla.sim.overheadPerAccess();

        std::vector<std::string> walkRow{name}, appRow{name};
        for (Design d : designs) {
            auto wl2 = makeWorkload(name, scale);
            const Outcome out = runNative(*wl2, d, thp);
            const double oTarget = out.sim.overheadPerAccess();
            const double walkSpeedup =
                oTarget > 0.0 && oVanilla > 0.0 ? oVanilla / oTarget
                                                : 1.0;
            const double tTarget = modelExecTime(
                cal, Environment::Native, oVanilla, oTarget);
            const double appSpeedup = 1.0 / tTarget;
            walkRow.push_back(Table::num(walkSpeedup));
            appRow.push_back(Table::num(appSpeedup));
            walkAll[d].push_back(walkSpeedup);
            appAll[d].push_back(appSpeedup);
        }
        walkTable.addRow(walkRow);
        appTable.addRow(appRow);
    }
    std::vector<std::string> walkGeo{"Geo. Mean"}, appGeo{"Geo. Mean"};
    for (Design d : designs) {
        walkGeo.push_back(Table::num(geoMean(walkAll[d])));
        appGeo.push_back(Table::num(geoMean(appAll[d])));
    }
    walkTable.addRow(walkGeo);
    appTable.addRow(appGeo);

    std::printf("Page walk speedup over Vanilla Linux:\n");
    walkTable.print();
    json.addTable(std::string("fig14_walk_speedup_") +
                      (thp ? "thp" : "4k"),
                  walkTable);
    std::printf("\nApplication speedup over Vanilla Linux:\n");
    appTable.print();
    json.addTable(std::string("fig14_app_speedup_") +
                      (thp ? "thp" : "4k"),
                  appTable);
}

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "fig14");
    printConfigBanner("Figure 14: native-environment speedups of "
                      "advanced translation designs");
    runMode(false, json);
    runMode(true, json);
    std::printf("\nPaper reference: DMT walk speedup 1.28x (4KB) / "
                "1.46x (THP); app speedup ~1.05x.\n");
    return 0;
}
