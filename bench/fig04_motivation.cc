/**
 * @file
 * Figure 4 — motivation: normalized execution time and page-walk
 * overhead of the seven benchmarks under (1) native, (2) virtualized
 * with nested paging, (3) virtualized with shadow paging, and
 * (4) nested virtualization, all on vanilla translation.
 *
 * The "All" columns are the paper-calibrated measured totals; the
 * "PW" columns recompute the walk overhead from this repository's
 * simulator (calibrated fraction x simulated ratio = identity for
 * the baseline, so PW here reports the simulator's own mean walk
 * latencies scaled into the measured fractions, plus raw per-walk
 * latency as a cross-check).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace dmt;
using namespace dmt::bench;

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "fig04");
    printConfigBanner(
        "Figure 4: translation overhead of native / virtualized "
        "(nPT, sPT) / nested environments");

    Table table({"Workload", "Native All", "Native PW", "Virt nPT All",
                 "Virt nPT PW", "Virt sPT All", "Virt sPT PW",
                 "Nested All", "Nested PW", "walkLat nat",
                 "walkLat nPT", "walkLat nested"});

    std::vector<double> natAll, nptAll, sptAll, nestAll;
    std::vector<double> natPw, nptPw, sptPw, nestPw;
    const double scale = scaleFromEnv();
    for (const auto &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, scale);
        const Calibration &cal = wl->calibration();

        const Outcome native = runNative(*wl, Design::Vanilla, false);
        const Outcome virt = runVirt(*wl, Design::Vanilla, false);
        const Outcome spt = runVirt(*wl, Design::Shadow, false);
        const Outcome nested = runNested(*wl, Design::Vanilla, false);

        const double natTotal = 1.0;
        const double natWalk =
            baselineWalkOverhead(cal, Environment::Native);
        const double nptTotal =
            baselineTotal(cal, Environment::VirtNested);
        const double nptWalk =
            baselineWalkOverhead(cal, Environment::VirtNested);
        const double sptTotal =
            baselineTotal(cal, Environment::VirtShadow);
        const double sptWalk =
            baselineWalkOverhead(cal, Environment::VirtShadow);
        const double nestedTotal =
            baselineTotal(cal, Environment::NestedVirt);
        const double nestedWalk =
            baselineWalkOverhead(cal, Environment::NestedVirt);

        natAll.push_back(natTotal);
        nptAll.push_back(nptTotal);
        sptAll.push_back(sptTotal);
        nestAll.push_back(nestedTotal);
        natPw.push_back(natWalk);
        nptPw.push_back(nptWalk);
        sptPw.push_back(sptWalk);
        nestPw.push_back(nestedWalk);

        table.addRow({name, Table::num(natTotal), Table::num(natWalk),
                      Table::num(nptTotal), Table::num(nptWalk),
                      Table::num(sptTotal), Table::num(sptWalk),
                      Table::num(nestedTotal), Table::num(nestedWalk),
                      Table::num(native.sim.meanWalkLatency(), 1),
                      Table::num(virt.sim.meanWalkLatency(), 1),
                      Table::num(nested.sim.meanWalkLatency(), 1)});
    }
    table.addRow({"Geo. Mean", Table::num(geoMean(natAll)),
                  Table::num(geoMean(natPw)),
                  Table::num(geoMean(nptAll)),
                  Table::num(geoMean(nptPw)),
                  Table::num(geoMean(sptAll)),
                  Table::num(geoMean(sptPw)),
                  Table::num(geoMean(nestAll)),
                  Table::num(geoMean(nestPw)), "-", "-", "-"});
    table.print();
    json.addTable("fig04_overheads", table);

    std::printf("\nPaper reference (averages): virtualization 1.46x "
                "native, nested 4.13x; walk overhead 21%% / 43%% / "
                "48%% (native / virt / nested), shadow paging 1.39x "
                "over nested paging.\n");
    return 0;
}
