/**
 * @file
 * Table 6 — the number of sequential memory accesses each design
 * needs per translation, cross-checked against the simulator's
 * observed dependent-reference chains (with page-walk caches
 * disabled so the worst-case chain is exercised).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace dmt;
using namespace dmt::bench;

namespace
{

/** Run one cell with PWCs effectively disabled (1-entry caches
 *  cannot help random traffic much, but we use the analytic count
 *  from the mechanism's worst observed chain). */
double
maxRefs(const SimResult &res)
{
    return res.meanSeqRefs();
}

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "tab06");
    printConfigBanner("Table 6: sequential memory accesses per "
                      "translation design");

    std::printf("Analytic (paper Table 6):\n");
    Table analytic({"Design", "Native", "Virtualization",
                    "Nested Virt."});
    analytic.addRow({"pvDMT", "1", "2", "3"});
    analytic.addRow({"DMT", "1", "3", "3"});
    analytic.addRow({"ECPT", "1", "3", "N/A"});
    analytic.addRow({"FPT", "2", "8", "N/A"});
    analytic.addRow({"Agile Paging", "N/A", "4-24", "N/A"});
    analytic.addRow({"ASAP", "4", "24", "N/A"});
    analytic.addRow({"Radix (vanilla)", "4", "24", "24 (via sPT)"});
    analytic.print();
    json.addTable("tab06_analytic", analytic);

    std::printf("\nSimulator cross-check (mean dependent refs per "
                "walk on GUPS; PWCs enabled, so radix chains show "
                "their cached common case):\n");
    auto wl = makeWorkload("GUPS", scaleFromEnv());

    Table observed({"Design", "Native", "Virtualized"});
    struct Row
    {
        Design design;
        bool native;
        bool virt;
    };
    const Row rows[] = {
        {Design::Vanilla, true, true}, {Design::Fpt, true, true},
        {Design::Ecpt, true, true},    {Design::Asap, true, true},
        {Design::Dmt, true, true},     {Design::PvDmt, false, true},
        {Design::Agile, false, true},
    };
    for (const auto &row : rows) {
        std::string nat = "N/A", virt = "N/A";
        if (row.native) {
            auto w = makeWorkload("GUPS", scaleFromEnv());
            nat = Table::num(
                maxRefs(runNative(*w, row.design, false).sim), 2);
        }
        if (row.virt) {
            auto w = makeWorkload("GUPS", scaleFromEnv());
            virt = Table::num(
                maxRefs(runVirt(*w, row.design, false).sim), 2);
        }
        observed.addRow({designName(row.design, true), nat, virt});
    }
    observed.print();
    json.addTable("tab06_observed_gups", observed);
    {
        auto w = makeWorkload("GUPS", scaleFromEnv());
        const auto base = runNested(*w, Design::Vanilla, false);
        auto w2 = makeWorkload("GUPS", scaleFromEnv());
        const auto pv = runNested(*w2, Design::PvDmt, false);
        std::printf("\nNested virtualization: baseline (2-D over "
                    "sPT) %.2f refs/walk; pvDMT %.2f refs/walk.\n",
                    base.sim.meanSeqRefs(), pv.sim.meanSeqRefs());
    }
    return 0;
}
