/**
 * @file
 * Shared harness code for the per-figure/table benchmark binaries.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper: it builds fresh testbeds per (workload, design, page-size)
 * cell, runs the trace-driven simulation, applies the §5 execution
 * model, and prints the same rows/series the paper reports. The cell
 * execution itself lives in src/driver (shared with dmt-campaign);
 * this layer adds environment sizing and table/JSON presentation.
 *
 * Environment knobs (all optional):
 *   DMT_BENCH_ACCESSES  measured accesses per cell (default 1000000)
 *   DMT_BENCH_WARMUP    warmup accesses (default 200000)
 *   DMT_BENCH_SCALE     working-set scale denominator (default 16,
 *                       i.e. 1/16 of the paper's footprints)
 *
 * Every binary also accepts `--json[=PATH]`: emit the printed tables
 * as a machine-readable JSON document (default BENCH_<name>.json)
 * through the same deterministic emitter dmt-campaign uses.
 */

#ifndef DMT_BENCH_BENCH_UTIL_HH
#define DMT_BENCH_BENCH_UTIL_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "driver/campaign.hh"
#include "sim/exec_model.hh"
#include "sim/testbed.hh"
#include "sim/translation_sim.hh"
#include "workloads/workloads.hh"

namespace dmt
{
namespace bench
{

/** Outcome of one simulated cell (see driver::CellOutcome). */
using Outcome = driver::CellOutcome;

/** Simulation sizing from the environment. */
SimConfig simConfigFromEnv(bool record_steps = false);

/** Working-set scale from the environment. */
double scaleFromEnv();

/**
 * Base testbed config for a page mode. Unless DMT_BENCH_FULL_MACHINE
 * is set, TLB/PWC/cache capacities are scaled by the working-set
 * scale so their reach relative to the working set matches the
 * paper's full-size runs.
 */
TestbedConfig testbedConfig(bool thp);

/** Run one native cell. */
Outcome runNative(Workload &workload, Design design, bool thp,
                  std::uint64_t seed = 42);

/** Run one single-level virtualization cell. */
Outcome runVirt(Workload &workload, Design design, bool thp,
                std::uint64_t seed = 42, bool record_steps = false);

/** Run one nested-virtualization cell. */
Outcome runNested(Workload &workload, Design design, bool thp,
                  std::uint64_t seed = 42);

/** Pretty-print a table: header + rows of fixed-width columns. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);
    void print() const;

    const std::vector<std::string> &header() const { return header_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Optional JSON mirror of a binary's printed tables.
 *
 * Construct it from argv at the top of main(); while disabled every
 * call is a no-op, so binaries register their tables unconditionally.
 * Tables are written (sorted by registration name) when write() or
 * the destructor runs.
 */
class JsonReport
{
  public:
    /** Scans argv for --json[=PATH]; strips nothing, ignores rest. */
    JsonReport(int argc, char **argv, std::string experiment);
    ~JsonReport();

    JsonReport(const JsonReport &) = delete;
    JsonReport &operator=(const JsonReport &) = delete;

    bool enabled() const { return enabled_; }

    /** Register a table under a stable name. */
    void addTable(const std::string &name, const Table &table);

    /** Write the document now (idempotent). */
    void write();

  private:
    bool enabled_ = false;
    bool written_ = false;
    std::string experiment_;
    std::string path_;
    std::map<std::string, std::pair<std::vector<std::string>,
                                    std::vector<std::vector<
                                        std::string>>>>
        tables_;
};

/** Print the standard configuration banner (Tables 2 & 3). */
void printConfigBanner(const std::string &experiment);

} // namespace bench
} // namespace dmt

#endif // DMT_BENCH_BENCH_UTIL_HH
