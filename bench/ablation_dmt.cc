/**
 * @file
 * Ablations of DMT's design choices (DESIGN.md §5):
 *
 *  (a) number of DMT registers vs translation coverage — why 16 is
 *      the sweet spot (§2.3 / §4.1);
 *  (b) the merge bubble threshold t vs cluster count and eager-TEA
 *      waste on Memcached's 778-slab layout (§4.2.1);
 *  (c) page-walk-cache size sensitivity of the *baseline*, i.e. how
 *      much of DMT's advantage survives bigger MMU caches (§6.2);
 *  (d) eager TEA allocation waste per workload (§7).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/mapping_manager.hh"

using namespace dmt;
using namespace dmt::bench;

namespace
{

void
registerSweep(JsonReport &json)
{
    std::printf("\n(a) Register-count sweep (native, 4KB):\n");
    Table table({"Workload", "Registers", "Coverage", "Walk overhead "
                 "(cyc/access)"});
    const double scale = scaleFromEnv();
    for (const char *name : {"Memcached", "Redis"}) {
        for (int regs : {2, 4, 8, 16}) {
            auto wl = makeWorkload(name, scale);
            TestbedConfig cfg = testbedConfig(false);
            cfg.mapping.maxRegisters = regs;
            NativeTestbed tb(wl->footprintBytes(), cfg);
            tb.attachDmt();
            wl->setup(tb.proc());
            auto &mech = tb.build(Design::Dmt);
            auto trace = wl->trace(42);
            TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
            const SimResult res = sim.run(*trace, simConfigFromEnv());
            table.addRow(
                {name, std::to_string(regs),
                 Table::num(tb.dmtFetcher()->stats().coverage() *
                                100.0,
                            2) +
                     "%",
                 Table::num(res.overheadPerAccess(), 1)});
        }
    }
    table.print();
    json.addTable("ablation_registers", table);
}

void
bubbleSweep(JsonReport &json)
{
    std::printf("\n(b) Merge bubble-threshold sweep (Memcached's "
                "1065 VMAs):\n");
    Table table({"Threshold", "Clusters", "TEAs", "Coverage",
                 "TEA pages (eager)"});
    const double scale = scaleFromEnv();
    for (double t : {0.0, 0.005, 0.02, 0.08}) {
        auto wl = makeWorkload("Memcached", scale);
        TestbedConfig cfg = testbedConfig(false);
        cfg.mapping.bubbleThreshold = t;
        NativeTestbed tb(wl->footprintBytes(), cfg);
        tb.attachDmt();
        wl->setup(tb.proc());
        auto &mech = tb.build(Design::Dmt);
        auto trace = wl->trace(42);
        TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
        SimConfig simCfg = simConfigFromEnv();
        simCfg.measureAccesses /= 4;
        sim.run(*trace, simCfg);
        table.addRow(
            {Table::num(t * 100.0, 1) + "%",
             std::to_string(tb.mappingManager()->clusters().size()),
             std::to_string(tb.teaManager()->all().size()),
             Table::num(tb.dmtFetcher()->stats().coverage() * 100.0,
                        2) +
                 "%",
             std::to_string(tb.teaManager()->reservedPages())});
    }
    table.print();
    json.addTable("ablation_bubble_threshold", table);
    std::printf("Cluster counts include the ~290 isolated small VMAs; the "
                "slab groups collapse from 778 mappings to 2 once "
                "the threshold admits their sub-16 KB bubbles. TEA "
                "counts stay low because span-aligned coverages "
                "union.\n");
}

void
pwcSweep(JsonReport &json)
{
    std::printf("\n(c) Baseline PWC-size sensitivity (virtualized "
                "GUPS, 4KB): does a bigger MMU cache close the "
                "gap?\n");
    Table table({"PWC entries", "Vanilla KVM (cyc/walk)",
                 "pvDMT (cyc/walk)", "Speedup"});
    const double scale = scaleFromEnv();
    for (int mult : {1, 4, 16}) {
        TestbedConfig cfg = testbedConfig(false);
        cfg.pwc.entriesForL3Table *= mult;
        cfg.pwc.entriesForL2Table *= mult;
        cfg.pwc.entriesForL1Table *= mult;
        double base = 0, pv = 0;
        {
            auto wl = makeWorkload("GUPS", scale);
            VirtTestbed tb(wl->footprintBytes(), cfg);
            wl->setup(tb.proc());
            auto &mech = tb.build(Design::Vanilla);
            auto trace = wl->trace(42);
            TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
            base = sim.run(*trace, simConfigFromEnv())
                       .meanWalkLatency();
        }
        {
            auto wl = makeWorkload("GUPS", scale);
            VirtTestbed tb(wl->footprintBytes(), cfg);
            tb.attachDmt(true);
            wl->setup(tb.proc());
            auto &mech = tb.build(Design::PvDmt);
            auto trace = wl->trace(42);
            TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
            pv = sim.run(*trace, simConfigFromEnv())
                     .meanWalkLatency();
        }
        char label[32];
        std::snprintf(label, sizeof(label), "%d-%d-%d",
                      cfg.pwc.entriesForL3Table,
                      cfg.pwc.entriesForL2Table,
                      cfg.pwc.entriesForL1Table);
        table.addRow({label, Table::num(base, 1), Table::num(pv, 1),
                      Table::num(base / pv, 2) + "x"});
    }
    table.print();
    json.addTable("ablation_pwc_sensitivity", table);
    std::printf("Even a 16x PWC cannot remove the leaf fetches that "
                "DMT eliminates structurally.\n");
}

void
eagerWaste(JsonReport &json)
{
    std::printf("\n(d) Eager TEA allocation waste (4KB):\n");
    Table table({"Workload", "TEA pages reserved", "Tables in use",
                 "Waste"});
    const double scale = scaleFromEnv();
    for (const auto &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, scale);
        NativeTestbed tb(wl->footprintBytes(), testbedConfig(false));
        tb.attachDmt();
        wl->setup(tb.proc());
        const auto reserved = tb.teaManager()->reservedPages();
        std::uint64_t used = 0;
        for (const Tea *tea : tb.teaManager()->all())
            used += tb.teaManager()->tablesInUse(tea->coverBase,
                                                 tea->leafSize);
        table.addRow({name, std::to_string(reserved),
                      std::to_string(used),
                      Table::num((reserved > used
                                      ? static_cast<double>(
                                            reserved - used)
                                      : 0.0) /
                                     static_cast<double>(reserved) *
                                     100.0,
                                 1) +
                          "%"});
    }
    table.print();
    json.addTable("ablation_eager_tea_waste", table);
    std::printf("Paper §6.3: eager allocation costs <2.5%% extra "
                "page-table memory for populated working sets.\n");
}

void
fiveLevelSweep(JsonReport &json)
{
    std::printf("\n(e) 4-level vs 5-level paging (native GUPS, "
                "4KB): radix walks lengthen, DMT stays at one "
                "reference (§1/§2.1.1):\n");
    Table table({"Levels", "Design", "refs/walk", "cyc/walk"});
    const double scale = scaleFromEnv();
    for (int levels : {4, 5}) {
        for (Design d : {Design::Vanilla, Design::Dmt}) {
            auto wl = makeWorkload("GUPS", scale);
            TestbedConfig cfg = testbedConfig(false);
            cfg.ptLevels = levels;
            NativeTestbed tb(wl->footprintBytes(), cfg);
            if (d == Design::Dmt)
                tb.attachDmt();
            wl->setup(tb.proc());
            auto &mech = tb.build(d);
            auto trace = wl->trace(42);
            TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
            const SimResult res =
                sim.run(*trace, simConfigFromEnv());
            table.addRow({std::to_string(levels),
                          designName(d, false),
                          Table::num(res.meanSeqRefs(), 2),
                          Table::num(res.meanWalkLatency(), 1)});
        }
    }
    table.print();
    json.addTable("ablation_five_level", table);
}

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "ablation");
    printConfigBanner("Ablations: registers, bubble threshold, PWC "
                      "sensitivity, eager TEAs, 5-level paging");
    registerSweep(json);
    bubbleSweep(json);
    pwcSweep(json);
    eagerWaste(json);
    fiveLevelSweep(json);
    return 0;
}
