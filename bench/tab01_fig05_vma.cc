/**
 * @file
 * Table 1 and Figure 5 — VMA characteristics.
 *
 * For each workload (and each SPEC CPU 2006/2017 profile) compute:
 *   Total    — number of VMAs,
 *   99% Cov. — minimum number of VMAs (largest first) covering 99%
 *              of the total mapped bytes,
 *   Clusters — number of clusters (bubble ratio <= 2%) needed to
 *              cover 99% of the total mapped bytes.
 *
 * Also validates Table 4: the scaled working-set footprint per
 * workload. Figure 5 prints the CDFs of the three metrics over the
 * SPEC suites.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "core/mapping_manager.hh"

using namespace dmt;
using namespace dmt::bench;

namespace
{

struct VmaMetrics
{
    std::size_t total;
    std::size_t cov99;
    std::size_t clusters99;
};

VmaMetrics
measure(const std::vector<Vma> &vmas)
{
    VmaMetrics m{};
    m.total = vmas.size();

    Addr totalBytes = 0;
    for (const Vma &vma : vmas)
        totalBytes += vma.size;
    const auto target = static_cast<Addr>(0.99 *
                        static_cast<double>(totalBytes));

    // 99% coverage: largest VMAs first.
    std::vector<Addr> sizes;
    for (const Vma &vma : vmas)
        sizes.push_back(vma.size);
    std::sort(sizes.rbegin(), sizes.rend());
    Addr covered = 0;
    for (Addr size : sizes) {
        covered += size;
        ++m.cov99;
        if (covered >= target)
            break;
    }

    // Clusters covering 99%: cluster at 2% bubbles, largest first.
    const auto clusters = MappingManager::clusterVmas(vmas, 0.02);
    std::vector<Addr> clusterBytes;
    for (const auto &c : clusters)
        clusterBytes.push_back(c.vmaBytes);
    std::sort(clusterBytes.rbegin(), clusterBytes.rend());
    covered = 0;
    for (Addr bytes : clusterBytes) {
        covered += bytes;
        ++m.clusters99;
        if (covered >= target)
            break;
    }
    return m;
}

void
printCdf(const char *title, std::vector<std::size_t> values)
{
    std::sort(values.begin(), values.end());
    std::printf("  %s CDF:", title);
    for (double p : {0.25, 0.50, 0.75, 0.90, 1.00}) {
        const auto idx = std::min(
            values.size() - 1,
            static_cast<std::size_t>(p * values.size()));
        std::printf("  p%.0f=%zu", p * 100, values[idx]);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    JsonReport json(argc, argv, "tab01_fig05");
    printConfigBanner("Table 1 / Figure 5: VMA characteristics; "
                      "Table 4 footprints");

    Table table({"Workload", "Total", "99% Cov.", "Clusters",
                 "Footprint (GB, scaled)"});
    const double scale = scaleFromEnv();
    for (const auto &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, scale);
        // Measure the layout on a small native testbed.
        NativeTestbed tb(wl->footprintBytes(), {});
        wl->setup(tb.proc());
        const VmaMetrics m = measure(tb.proc().vmas().all());
        table.addRow({name, std::to_string(m.total),
                      std::to_string(m.cov99),
                      std::to_string(m.clusters99),
                      Table::num(static_cast<double>(
                                     wl->footprintBytes()) /
                                     (1024.0 * 1024 * 1024),
                                 2)});
    }
    table.print();
    json.addTable("tab01_vma_characteristics", table);

    std::printf("\nPaper reference: Redis 182/6/6, Memcached "
                "1065/778/2, GUPS 103/1/1, BTree 109/2/2, Canneal "
                "116/2/2, XSBench 111/1/1, Graph500 105/1/1.\n");

    // Figure 5: SPEC CPU suites.
    for (const auto &[title, profiles] :
         {std::make_pair("SPEC CPU 2006 (30 workloads)",
                         makeSpecProfiles2006()),
          std::make_pair("SPEC CPU 2017 (47 workloads)",
                         makeSpecProfiles2017())}) {
        std::printf("\n%s\n", title);
        std::vector<std::size_t> totals, covs, clusters;
        for (const auto &profile : profiles) {
            const VmaMetrics m = measure(profile.vmas);
            totals.push_back(m.total);
            covs.push_back(m.cov99);
            clusters.push_back(m.clusters99);
        }
        printCdf("(a) Total   ", totals);
        printCdf("(b) 99% Cov.", covs);
        printCdf("(c) Clusters", clusters);
    }
    std::printf("\nPaper reference ranges: 2006 Total 18-39, Cov "
                "1-14, Clusters 1-8; 2017 Total 24-70, Cov 1-21, "
                "Clusters 1-12; 16 VMAs cover 99%% in all but 3 "
                "workloads.\n");
    return 0;
}
