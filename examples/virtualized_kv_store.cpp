/**
 * @file
 * A virtualized in-memory key-value store (the paper's Redis
 * scenario): run the same Zipf-skewed lookup trace under vanilla
 * KVM nested paging and under pvDMT, and compare page-walk latency,
 * reference counts, and modeled application time.
 *
 *   $ ./build/examples/virtualized_kv_store
 */

#include <cstdio>

#include "sim/exec_model.hh"
#include "sim/testbed.hh"
#include "sim/translation_sim.hh"
#include "workloads/workloads.hh"

using namespace dmt;

namespace
{

SimResult
runOne(Design design, const Workload &proto, double scale)
{
    auto wl = makeWorkload(proto.name(), scale);
    const TestbedConfig cfg = scaledTestbedConfig(scale);
    VirtTestbed tb(wl->footprintBytes(), cfg);
    if (design == Design::PvDmt)
        tb.attachDmt(true);
    wl->setup(tb.proc());
    auto &mech = tb.build(design);
    auto trace = wl->trace(2024);
    TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
    SimConfig simCfg;
    simCfg.warmupAccesses = 100'000;
    simCfg.measureAccesses = 400'000;
    const SimResult res = sim.run(*trace, simCfg);
    std::printf("  %-12s mean walk %.1f cycles, %.2f dependent "
                "refs/walk, %llu TLB misses\n",
                mech.name().c_str(), res.meanWalkLatency(),
                res.meanSeqRefs(),
                static_cast<unsigned long long>(res.walks));
    return res;
}

} // namespace

int
main()
{
    const double scale = 1.0 / 32.0;
    auto proto = makeWorkload("Redis", scale);
    std::printf("Redis-like key-value store, %.1f GB working set "
                "(paper: 155 GB), Zipf(0.99) lookups, virtualized\n\n",
                static_cast<double>(proto->footprintBytes()) /
                    (1ull << 30));

    const SimResult base = runOne(Design::Vanilla, *proto, scale);
    const SimResult pv = runOne(Design::PvDmt, *proto, scale);

    const double walkSpeedup =
        base.overheadPerAccess() / pv.overheadPerAccess();
    const Calibration &cal = proto->calibration();
    const double tPv =
        modelExecTime(cal, Environment::VirtNested,
                      base.overheadPerAccess(),
                      pv.overheadPerAccess());
    const double appSpeedup =
        baselineTotal(cal, Environment::VirtNested) / tPv;

    std::printf("\npvDMT speedup over Vanilla KVM:\n");
    std::printf("  page walks : %.2fx  (paper Fig. 15a: ~1.5-1.6x)\n",
                walkSpeedup);
    std::printf("  application: %.2fx  (paper: ~1.2x)\n", appSpeedup);
    return 0;
}
