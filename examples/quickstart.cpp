/**
 * @file
 * Quickstart: build a tiny native machine by hand from the public
 * API, attach DMT, and watch one translation become a single memory
 * reference.
 *
 *   $ ./build/examples/quickstart
 *
 * Walkthrough:
 *  1. physical memory + buddy allocator + a process address space;
 *  2. a TEA manager placing leaf page-table pages contiguously and a
 *     mapping manager keeping the 16 DMT registers in sync;
 *  3. an mmap'd heap — the paper's "allocate at init" pattern;
 *  4. a vanilla radix walk vs a DMT fetch of the same address.
 */

#include <cstdio>

#include "core/dmt_fetcher.hh"
#include "core/mapping_manager.hh"
#include "mem/memory_hierarchy.hh"
#include "mem/physical_memory.hh"
#include "os/address_space.hh"
#include "sim/radix_walker.hh"

using namespace dmt;

int
main()
{
    // 1. A machine: 1 GB of physical memory, Table-3 caches.
    PhysicalMemory mem(Addr{1} << 30);
    BuddyAllocator allocator(mem.size() >> pageShift);
    MemoryHierarchy caches;
    AddressSpace proc(mem, allocator, {});

    // 2. DMT's OS state. The TEA manager becomes the page table's
    //    frame provider; the mapping manager watches the VMA tree.
    LocalTeaSource teaSource(allocator);
    TeaManager teas(proc.pageTable(), teaSource);
    DmtRegisterFile registers;
    MappingManager mappings(proc, teas, registers, {});

    // 3. A 64 MB heap, populated at init time.
    const Vma &heap = proc.mmapAt(0x10000000, Addr{64} << 20,
                                  VmaKind::Heap);
    std::printf("heap VMA  : [0x%llx, 0x%llx) (%llu pages)\n",
                (unsigned long long)heap.base,
                (unsigned long long)heap.end(),
                (unsigned long long)heap.pages());
    const Tea *tea = teas.lookup(heap.base, PageSize::Size4K);
    std::printf("its TEA   : covers [0x%llx, 0x%llx), %llu table "
                "pages at PFN 0x%llx (contiguous)\n",
                (unsigned long long)tea->coverBase,
                (unsigned long long)tea->coverEnd(),
                (unsigned long long)tea->pages(),
                (unsigned long long)tea->basePfn);
    std::printf("registers : %d loaded\n\n", registers.used());

    // 4. Translate one address both ways.
    const Addr va = heap.base + 0x123456;
    RadixWalker vanilla(proc.pageTable(), caches);
    DmtNativeFetcher dmt(registers, proc.pageTable(), mem, caches,
                         vanilla);

    caches.flush();
    const WalkRecord w1 = vanilla.walk(va);
    caches.flush();
    const WalkRecord w2 = dmt.walk(va);

    std::printf("vanilla x86 walk : %d sequential references, "
                "%llu cycles\n",
                w1.seqRefs, (unsigned long long)w1.latency);
    std::printf("DMT fetch        : %d sequential reference, "
                "%llu cycles\n",
                w2.seqRefs, (unsigned long long)w2.latency);
    std::printf("same translation : %s (pa=0x%llx)\n",
                w1.pa == w2.pa ? "yes" : "NO!",
                (unsigned long long)w1.pa);
    std::printf("register coverage: %.1f%% of requests served "
                "directly\n",
                dmt.stats().coverage() * 100.0);
    return w1.pa == w2.pa ? 0 : 1;
}
