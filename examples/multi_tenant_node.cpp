/**
 * @file
 * Multi-tenant host node (DESIGN.md §10): four tenant VMs sharing
 * one core's 16-entry DMT register file. The scheduler round-robins
 * 512-access slices; under VMID-tagged retention a tenant's
 * registers often survive its time off-core, while the full-flush
 * policy reloads everything and empties the tenant's TLBs and PWCs
 * at every switch-in — the translation tax of dense consolidation.
 *
 *   $ ./build/examples/multi_tenant_node
 */

#include <cstdio>

#include "host/node.hh"

using namespace dmt;
using namespace dmt::host;

namespace
{

std::vector<TenantSpec>
makeTenants()
{
    const char *workloads[] = {"GUPS", "BTree", "Redis", "XSBench"};
    std::vector<TenantSpec> tenants;
    for (int i = 0; i < 4; ++i) {
        TenantSpec t;
        t.name = "vm" + std::to_string(i);
        t.workload = workloads[i % 4];
        t.env = driver::CampaignEnv::Virt;
        t.design = Design::Dmt;
        // Four tenants hold ~20 registers between them — more than
        // the 16-entry file, so plain LRU round-robin thrashes
        // (cyclic reuse beyond capacity is LRU's worst case). Pin
        // each tenant's hottest three so they ride out descheduling.
        t.pinnedRegisters = 3;
        tenants.push_back(t);
    }
    return tenants;
}

} // namespace

int
main()
{
    std::printf("4 tenant VMs x 1 core, 512-access slices, "
                "DMT registers multiplexed 4:1\n\n");
    std::printf("%-8s %10s %10s %10s %12s %14s\n", "policy",
                "reg hits", "reg loads", "flushes", "walk cyc",
                "host cyc/acc");

    for (const FlushPolicy policy :
         {FlushPolicy::Tagged, FlushPolicy::Full}) {
        HostNodeConfig node;
        node.cores = 1;
        node.sliceAccesses = 512;
        node.flush = policy;
        node.scale = 1.0 / 64.0;
        node.sim.warmupAccesses = 5'000;
        node.sim.measureAccesses = 30'000;

        HostNode host(node, makeTenants());
        const auto results = host.run();

        Counter hits = 0, loads = 0, flushes = 0, hostCycles = 0;
        Counter accesses = 0, walks = 0;
        double walkCycles = 0.0;
        for (const HostTenantResult &r : results) {
            hits += r.host.regHits;
            loads += r.host.regLoads;
            flushes += r.host.tlbFlushes;
            hostCycles += r.host.hostCycles();
            accesses += r.sim.accesses;
            walks += r.sim.walks;
            walkCycles += r.sim.walkCycles;
        }
        std::printf("%-8s %10llu %10llu %10llu %12.1f %14.3f\n",
                    flushPolicyId(policy).c_str(),
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(loads),
                    static_cast<unsigned long long>(flushes),
                    walks ? walkCycles / static_cast<double>(walks)
                          : 0.0,
                    static_cast<double>(hostCycles) /
                        static_cast<double>(accesses));
    }

    std::printf(
        "\nTagged retention keeps descheduled tenants' registers "
        "resident (hits instead of reloads) and never touches their "
        "TLBs; full flush pays a reload storm plus cold TLBs/PWCs "
        "every switch. Same contrast dmt-node sweeps to 256 "
        "tenants/core.\n");
    return 0;
}
