/**
 * @file
 * Extending the harness: define your own workload (VMA layout +
 * access trace + calibration) and evaluate every translation design
 * on it, natively and virtualized.
 *
 * The example models a streaming analytics job: a large column store
 * scanned mostly sequentially with occasional random index probes —
 * a pattern that is kind to TLBs and PWCs, so the gap between the
 * designs narrows compared to GUPS.
 *
 *   $ ./build/examples/custom_workload
 */

#include <cstdio>
#include <memory>

#include "sim/testbed.hh"
#include "sim/translation_sim.hh"
#include "workloads/workloads.hh"

using namespace dmt;

namespace
{

constexpr Addr columnBase = 0x20000000ull;
constexpr Addr indexBase = 0x7a0000000000ull;

/** 7 sequential column reads : 1 random index probe. */
class ScanTrace : public TraceSource
{
  public:
    ScanTrace(std::uint64_t seed, Addr column_bytes,
              Addr index_bytes)
        : rng_(seed), columnBytes_(column_bytes),
          indexBytes_(index_bytes)
    {
    }

    Addr
    next() override
    {
        if (++step_ % 8 == 0)
            return indexBase + rng_.below(indexBytes_ / 8) * 8;
        cursor_ = (cursor_ + 64) % columnBytes_;
        return columnBase + cursor_;
    }

  private:
    Rng rng_;
    Addr columnBytes_, indexBytes_;
    Addr cursor_ = 0;
    std::uint64_t step_ = 0;
};

class ColumnScanWorkload : public Workload
{
  public:
    std::string name() const override { return "ColumnScan"; }

    Addr footprintBytes() const override { return Addr{2} << 30; }

    void
    setup(AddressSpace &proc) override
    {
        proc.mmapAt(0x400000, Addr{1} << 20, VmaKind::Code);
        proc.mmapAt(columnBase, footprintBytes(), VmaKind::Heap);
        proc.mmapAt(indexBase, Addr{128} << 20, VmaKind::MappedFile);
    }

    std::unique_ptr<TraceSource>
    trace(std::uint64_t seed) const override
    {
        return std::make_unique<ScanTrace>(seed, footprintBytes(),
                                           Addr{128} << 20);
    }

    const Calibration &calibration() const override { return cal_; }

  private:
    Calibration cal_;  //!< defaults: the paper's averages
};

} // namespace

int
main()
{
    ColumnScanWorkload proto;
    std::printf("custom workload '%s': %.1f GB column + 128 MB "
                "index, 7:1 sequential:random\n\n",
                proto.name().c_str(),
                static_cast<double>(proto.footprintBytes()) /
                    (1ull << 30));

    const TestbedConfig cfg = scaledTestbedConfig(1.0 / 16.0);
    std::printf("%-14s %12s %12s\n", "design", "native", "virt");
    for (Design d : {Design::Vanilla, Design::Ecpt, Design::Dmt,
                     Design::PvDmt}) {
        double native = -1.0, virt = -1.0;
        if (d != Design::PvDmt) {
            ColumnScanWorkload wl;
            NativeTestbed tb(wl.footprintBytes(), cfg);
            if (d == Design::Dmt)
                tb.attachDmt();
            wl.setup(tb.proc());
            auto &mech = tb.build(d);
            auto trace = wl.trace(1);
            TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
            SimConfig simCfg;
            simCfg.measureAccesses = 400'000;
            native = sim.run(*trace, simCfg).meanWalkLatency();
        }
        {
            ColumnScanWorkload wl;
            VirtTestbed tb(wl.footprintBytes(), cfg);
            if (d == Design::Dmt || d == Design::PvDmt)
                tb.attachDmt(d == Design::PvDmt);
            wl.setup(tb.proc());
            auto &mech = tb.build(d);
            auto trace = wl.trace(1);
            TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
            SimConfig simCfg;
            simCfg.measureAccesses = 400'000;
            virt = sim.run(*trace, simCfg).meanWalkLatency();
        }
        if (native >= 0.0) {
            std::printf("%-14s %9.1f cyc %9.1f cyc\n",
                        designName(d, false).c_str(), native, virt);
        } else {
            std::printf("%-14s %13s %9.1f cyc\n",
                        designName(d, false).c_str(), "n/a", virt);
        }
    }
    std::printf("\n(mean page-walk latency; sequential scans keep "
                "PTEs cache-resident, so every design is far from "
                "the GUPS worst case)\n");
    return 0;
}
