/**
 * @file
 * Nested virtualization (the cloud-on-cloud scenario of §2.1.3): an
 * L2 guest workload running inside an L1 hypervisor inside the L0
 * host. The baseline compresses L1/L0 into a shadow table and pays
 * VM exits for every synchronisation; nested pvDMT translates with
 * three direct PTE fetches and no shadow paging at all.
 *
 *   $ ./build/examples/nested_cloud
 */

#include <cstdio>

#include "sim/exec_model.hh"
#include "sim/testbed.hh"
#include "sim/translation_sim.hh"
#include "virt/costs.hh"
#include "workloads/workloads.hh"

using namespace dmt;

int
main()
{
    const double scale = 1.0 / 32.0;
    auto proto = makeWorkload("GUPS", scale);
    std::printf("GUPS inside an L2 VM (L2 on L1 on L0), %.1f GB "
                "working set\n\n",
                static_cast<double>(proto->footprintBytes()) /
                    (1ull << 30));

    SimResult results[2];
    Counter shadowExits = 0;
    Cycles hypercallCost = 0;
    int idx = 0;
    for (Design d : {Design::Vanilla, Design::PvDmt}) {
        auto wl = makeWorkload("GUPS", scale);
        NestedTestbed tb(wl->footprintBytes(),
                         scaledTestbedConfig(scale));
        if (d == Design::PvDmt)
            tb.attachPvDmt();
        wl->setup(tb.proc());
        auto &mech = tb.build(d);
        auto trace = wl->trace(7);
        TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
        SimConfig simCfg;
        simCfg.warmupAccesses = 100'000;
        simCfg.measureAccesses = 400'000;
        results[idx] = sim.run(*trace, simCfg);
        std::printf("%-20s %.1f cycles/walk, %.2f refs/walk\n",
                    mech.name().c_str(),
                    results[idx].meanWalkLatency(),
                    results[idx].meanSeqRefs());
        if (d == Design::Vanilla) {
            shadowExits = tb.shadowPager()->exits();
        } else {
            hypercallCost = tb.l2Hypercall()->simulatedCost();
            std::printf("  L2 register coverage: %.2f%%\n",
                        tb.dmtFetcher()->stats().coverage() * 100);
        }
        ++idx;
    }

    std::printf("\nshadow paging kept %llu VM exits in sync during "
                "setup (~%.1f ms of exit time at %.0f cycles each); "
                "pvDMT replaced them with cascaded hypercalls "
                "costing %.2f ms total\n",
                static_cast<unsigned long long>(shadowExits),
                static_cast<double>(shadowExits) * vmExitCycles /
                    cyclesPerSecond * 1e3 * nestedExitMultiplier,
                static_cast<double>(vmExitCycles),
                static_cast<double>(hypercallCost) /
                    cyclesPerSecond * 1e3);

    const Calibration &cal = proto->calibration();
    const double tPv = modelExecTime(
        cal, Environment::NestedVirt,
        results[0].overheadPerAccess(),
        results[1].overheadPerAccess(), /*removes_shadow=*/true,
        /*shadow_exit_scale=*/0.0);
    std::printf("\nmodeled application speedup: %.2fx "
                "(paper Fig. 17a: ~1.5x on average; GUPS is the "
                "extreme case)\n",
                baselineTotal(cal, Environment::NestedVirt) / tPv);
    return 0;
}
