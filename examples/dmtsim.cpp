/**
 * @file
 * dmtsim — the command-line driver: run any (workload, design,
 * environment, page mode) cell and print the full report.
 *
 *   dmtsim [--workload NAME] [--design NAME] [--env native|virt|
 *          nested] [--thp] [--scale N] [--accesses N] [--warmup N]
 *          [--seed N] [--batch N] [--audit[=N]] [--json FILE]
 *          [--record-trace FILE | --trace FILE]
 *
 * --json writes the cell's results in the same schema as one entry
 * of dmt-campaign's BENCH_campaign.json (see that tool for grid
 * sweeps).
 *
 * Examples:
 *   dmtsim --workload Redis --design pvdmt --env virt
 *   dmtsim --workload GUPS --design vanilla --env nested --thp
 *   dmtsim --workload BTree --record-trace btree.trc
 *   dmtsim --trace btree.trc --design dmt
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "driver/campaign.hh"
#include "driver/json.hh"

#include "check/invariant_auditor.hh"
#include "common/log.hh"
#include "obs/event_log.hh"
#include "obs/replay.hh"
#include "sim/exec_model.hh"
#include "sim/testbed.hh"
#include "sim/translation_sim.hh"
#include "workloads/trace_file.hh"
#include "workloads/workloads.hh"

using namespace dmt;

namespace
{

struct Options
{
    std::string workload = "GUPS";
    std::string design = "vanilla";
    std::string env = "native";
    bool thp = false;
    double scale = 1.0 / 16.0;
    std::uint64_t accesses = 1'000'000;
    std::uint64_t warmup = 200'000;
    std::uint64_t seed = 42;
    std::uint64_t batch = kDefaultSimBatch;
    std::string recordTrace;
    std::string traceFile;
    std::string jsonOut;
    std::string eventsOut;
    bool audit = false;
    std::uint64_t auditInterval = 0;  //!< 0 = final sweep only
};

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--workload Redis|Memcached|GUPS|BTree|Canneal|"
        "XSBench|Graph500]\n"
        "          [--design vanilla|shadow|fpt|ecpt|agile|asap|dmt|"
        "pvdmt]\n"
        "          [--env native|virt|nested] [--thp] [--scale N]\n"
        "          [--accesses N] [--warmup N] [--seed N]\n"
        "          [--batch N (1 = scalar loop)]\n"
        "          [--audit[=N]] [--json FILE] [--events FILE]\n"
        "          [--record-trace FILE] [--trace FILE]\n",
        argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--workload") opt.workload = value();
        else if (arg == "--design") opt.design = value();
        else if (arg == "--env") opt.env = value();
        else if (arg == "--thp") opt.thp = true;
        else if (arg == "--scale")
            opt.scale = 1.0 / std::strtod(value().c_str(), nullptr);
        else if (arg == "--accesses")
            opt.accesses = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--warmup")
            opt.warmup = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--seed")
            opt.seed = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--batch") {
            opt.batch = std::strtoull(value().c_str(), nullptr, 10);
            if (opt.batch == 0)
                usage(argv[0]);
        }
        else if (arg == "--json") opt.jsonOut = value();
        else if (arg == "--events") opt.eventsOut = value();
        else if (arg.rfind("--events=", 0) == 0)
            opt.eventsOut = arg.substr(std::strlen("--events="));
        else if (arg == "--record-trace") opt.recordTrace = value();
        else if (arg == "--trace") opt.traceFile = value();
        else if (arg == "--audit") opt.audit = true;
        else if (arg.rfind("--audit=", 0) == 0) {
            opt.audit = true;
            opt.auditInterval = std::strtoull(
                arg.c_str() + std::strlen("--audit="), nullptr, 10);
        }
        else usage(argv[0]);
    }
    return opt;
}

void
report(const SimResult &res, double coverage)
{
    std::printf("\naccesses            %llu\n",
                static_cast<unsigned long long>(res.accesses));
    std::printf("L1 TLB hits         %llu (%.2f%%)\n",
                static_cast<unsigned long long>(res.l1TlbHits),
                100.0 * static_cast<double>(res.l1TlbHits) /
                    static_cast<double>(res.accesses));
    std::printf("STLB hits           %llu (%.2f%%)\n",
                static_cast<unsigned long long>(res.l2TlbHits),
                100.0 * static_cast<double>(res.l2TlbHits) /
                    static_cast<double>(res.accesses));
    std::printf("page walks          %llu\n",
                static_cast<unsigned long long>(res.walks));
    std::printf("mean walk latency   %.2f cycles\n",
                res.meanWalkLatency());
    std::printf("dependent refs/walk %.2f\n", res.meanSeqRefs());
    std::printf("parallel refs/walk  %.2f\n",
                res.walks ? static_cast<double>(res.parallelRefs) /
                                static_cast<double>(res.walks)
                          : 0.0);
    std::printf("walk overhead       %.3f cycles/access\n",
                res.overheadPerAccess());
    std::printf("fallback walks      %llu\n",
                static_cast<unsigned long long>(res.fallbacks));
    if (coverage >= 0.0)
        std::printf("register coverage   %.2f%%\n", coverage * 100);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    auto wl = makeWorkload(opt.workload, opt.scale);
    const Design design = driver::parseDesign(opt.design);

    if (!opt.recordTrace.empty()) {
        // Record mode: lay out the workload, dump its trace, done.
        NativeTestbed tb(wl->footprintBytes(),
                         scaledTestbedConfig(opt.scale));
        wl->setup(tb.proc());
        auto trace = wl->trace(opt.seed);
        recordTrace(*trace, opt.warmup + opt.accesses,
                    opt.recordTrace);
        std::printf("recorded %llu accesses of %s to %s\n",
                    static_cast<unsigned long long>(opt.warmup +
                                                    opt.accesses),
                    opt.workload.c_str(), opt.recordTrace.c_str());
        return 0;
    }

    const TestbedConfig cfg = scaledTestbedConfig(
        opt.scale, opt.thp ? ThpMode::Always : ThpMode::Never);
    SimConfig simCfg;
    simCfg.warmupAccesses = opt.warmup;
    simCfg.measureAccesses = opt.accesses;
    // Result-invariant (asserted by the batch differential suite):
    // any batch size yields identical counters and event streams.
    simCfg.batchSize = opt.batch;

    auto makeTrace = [&]() -> std::unique_ptr<TraceSource> {
        if (!opt.traceFile.empty())
            return std::make_unique<FileTrace>(opt.traceFile);
        return wl->trace(opt.seed);
    };

    std::printf("%s / %s / %s%s, working set %.2f GB (1/%.0f of the "
                "paper)\n",
                opt.workload.c_str(), opt.design.c_str(),
                opt.env.c_str(), opt.thp ? " +THP" : "",
                static_cast<double>(wl->footprintBytes()) /
                    (1ull << 30),
                1.0 / opt.scale);

    // Declared before the testbeds: subsystems unregister their audit
    // hooks on destruction, so the auditor must outlive them.
    InvariantAuditor auditor;
    if (opt.audit && opt.auditInterval) {
#ifndef DMT_ENABLE_AUDIT
        warn("--audit=%llu requested but interval sweeps are compiled "
             "out; configure with -DDMT_ENABLE_AUDIT=ON (a final "
             "sweep still runs)",
             static_cast<unsigned long long>(opt.auditInterval));
#endif
        auditor.setInterval(opt.auditInterval);
    }
    // Interval sweeps are meaningful only once the machine is in a
    // steady state: enable after setup via this helper.
    auto runAudited = [&](auto &tb, TranslationMechanism &mech,
                          std::unique_ptr<TraceSource> trace) {
        if (opt.audit)
            tb.attachAuditor(auditor);
        TranslationSimulator sim(mech, tb.tlbs(), tb.caches());
        SimResult r;
        if (opt.eventsOut.empty()) {
            r = sim.run(*trace, simCfg);
        } else {
            // Capture every access to a .dmtevents file, embedding
            // the run's translation counters (diffed around the run
            // so pre-run state can't skew them) in the footer — the
            // file verifies itself via tools/events_check.
            obs::FileEventSink sink(opt.eventsOut);
            StatGroup before("before");
            tb.translationStats(before);
            sim.setEventSink(&sink);
            r = sim.run(*trace, simCfg);
            sim.setEventSink(nullptr);
            StatGroup after("after");
            tb.translationStats(after);
            obs::CounterMap counters = obs::diffCounters(
                obs::counterMapFromStats(before),
                obs::counterMapFromStats(after));
            obs::addSimResultCounters(counters, r);
            sink.setCounters(counters);
            sink.finish();
            std::printf("wrote %llu events to %s\n",
                        static_cast<unsigned long long>(
                            sink.eventCount()),
                        opt.eventsOut.c_str());
        }
        if (opt.audit) {
            auditor.sweep();
            // Teardown transients (freed VMAs, stale TLB entries)
            // are not violations; stop sweeping before destructors.
            auditor.setInterval(0);
        }
        return r;
    };

    SimResult res;
    double coverage = -1.0;
    if (opt.env == "native") {
        NativeTestbed tb(wl->footprintBytes(), cfg);
        if (design == Design::Dmt)
            tb.attachDmt();
        wl->setup(tb.proc());
        auto &mech = tb.build(design);
        res = runAudited(tb, mech, makeTrace());
        if (tb.dmtFetcher())
            coverage = tb.dmtFetcher()->stats().coverage();
    } else if (opt.env == "virt") {
        VirtTestbed tb(wl->footprintBytes(), cfg);
        if (design == Design::Dmt || design == Design::PvDmt)
            tb.attachDmt(design == Design::PvDmt);
        wl->setup(tb.proc());
        auto &mech = tb.build(design);
        res = runAudited(tb, mech, makeTrace());
        if (tb.dmtFetcher())
            coverage = tb.dmtFetcher()->stats().coverage();
    } else if (opt.env == "nested") {
        NestedTestbed tb(wl->footprintBytes(), cfg);
        if (design == Design::PvDmt)
            tb.attachPvDmt();
        wl->setup(tb.proc());
        auto &mech = tb.build(design);
        res = runAudited(tb, mech, makeTrace());
        if (tb.dmtFetcher())
            coverage = tb.dmtFetcher()->stats().coverage();
    } else {
        usage(argv[0]);
    }
    report(res, coverage);
    if (!opt.jsonOut.empty()) {
        std::ofstream os(opt.jsonOut, std::ios::binary);
        if (!os)
            fatal("cannot open '%s' for writing",
                  opt.jsonOut.c_str());
        JsonWriter json(os);
        json.beginObject();
        json.field("schema", "dmtsim-cell-v1");
        json.field("env", opt.env);
        json.field("workload", opt.workload);
        json.field("design", opt.design);
        json.field("thp", opt.thp);
        json.field("seed", opt.seed);
        json.field("accesses", res.accesses);
        json.field("l1_tlb_hits", res.l1TlbHits);
        json.field("stlb_hits", res.l2TlbHits);
        json.field("walks", res.walks);
        json.field("walk_cycles", res.walkCycles);
        json.field("mean_walk_latency", res.meanWalkLatency());
        json.field("overhead_per_access", res.overheadPerAccess());
        json.field("seq_refs", res.seqRefs);
        json.field("parallel_refs", res.parallelRefs);
        json.field("mean_seq_refs", res.meanSeqRefs());
        json.field("fallbacks", res.fallbacks);
        if (coverage >= 0.0)
            json.field("coverage", coverage);
        json.endObject();
        std::printf("wrote %s\n", opt.jsonOut.c_str());
    }
    if (opt.audit) {
        auditor.report();
        std::printf("audit               %llu sweeps, %llu hook runs, "
                    "%llu violations\n",
                    static_cast<unsigned long long>(
                        auditor.stats().sweeps),
                    static_cast<unsigned long long>(
                        auditor.stats().hooksRun),
                    static_cast<unsigned long long>(
                        auditor.stats().violations));
        if (!auditor.clean())
            return 3;
    }
    return 0;
}
